// Command verify is a self-check harness: it runs every permutation
// algorithm (including the I/O-optimized gather variants), every query
// engine, and the inverse transformations against the reference layout
// oracles over a dense sweep of sizes and worker counts, and reports the
// first discrepancy. Useful after porting or modifying the algorithms;
// the CI-grade equivalent of `go test ./...` condensed into one binary.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"implicitlayout/layout"
	"implicitlayout/perm"
	"implicitlayout/search"
)

func main() {
	maxN := flag.Int("maxn", 2000, "verify every size up to this exhaustively")
	sparse := flag.Int("sparse", 1<<20, "also verify power-of-two neighborhoods up to this size")
	b := flag.Int("b", 8, "B-tree node capacity")
	flag.Parse()

	sizes := map[int]bool{}
	for n := 0; n <= *maxN; n++ {
		sizes[n] = true
	}
	for n := 1 << 12; n <= *sparse; n <<= 1 {
		for _, d := range []int{-1, 0, 1} {
			if n+d >= 0 {
				sizes[n+d] = true
			}
		}
	}

	checked := 0
	for n := range sizes {
		if err := verifySize(n, *b); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL n=%d: %v\n", n, err)
			os.Exit(1)
		}
		checked++
	}
	fmt.Printf("verified %d sizes x %d layouts x 2 algorithms (+ variants, queries, inverses): all correct\n", checked, len(layout.Kinds()))
}

func sorted(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(2*i + 1)
	}
	return s
}

type variant struct {
	name string
	kind layout.Kind
	opts []perm.Option
	algo perm.Algorithm
}

func variants(b, workers int) []variant {
	w := perm.WithWorkers(workers)
	var vs []variant
	for _, k := range layout.Kinds() {
		for _, a := range perm.Algorithms() {
			vs = append(vs, variant{fmt.Sprintf("%v/%v", k, a), k, []perm.Option{w, perm.WithB(b)}, a})
		}
	}
	vs = append(vs,
		variant{"veb/cycle+transposed", layout.VEB, []perm.Option{w, perm.WithTransposedGather()}, perm.CycleLeader},
		variant{"veb/cycle+batched", layout.VEB, []perm.Option{w, perm.WithBatchedGather(8)}, perm.CycleLeader},
		variant{"bst/involution+softrev", layout.BST, []perm.Option{w, perm.WithSoftwareBitReversal()}, perm.Involution},
	)
	return vs
}

func verifySize(n, b int) error {
	base := sorted(n)
	for _, workers := range []int{1, 3} {
		for _, v := range variants(b, workers) {
			got := make([]uint64, n)
			copy(got, base)
			perm.Permute(got, v.kind, v.algo, v.opts...)
			want := layout.Build(v.kind, base, b)
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("%s P=%d: layout mismatch", v.name, workers)
			}
			if err := perm.Unpermute(got, v.kind, perm.WithB(b), perm.WithWorkers(workers)); err != nil {
				return fmt.Errorf("%s: unpermute: %v", v.name, err)
			}
			if !reflect.DeepEqual(got, base) {
				return fmt.Errorf("%s P=%d: inverse round trip failed", v.name, workers)
			}
		}
	}
	// Queries: spot-check membership and predecessor on each layout.
	if n > 0 {
		probe := []int{0, n / 3, n - 1}
		for _, k := range append(layout.Kinds(), layout.Sorted) {
			arr := layout.Build(k, base, b)
			ix := search.NewIndex(arr, k, b)
			for _, i := range probe {
				x := base[i]
				if pos := ix.Find(x); pos < 0 || arr[pos] != x {
					return fmt.Errorf("%v: Find(%d) failed", k, x)
				}
				if ix.Find(x+1) != -1 {
					return fmt.Errorf("%v: found absent key %d", k, x+1)
				}
				if pos := ix.Predecessor(x + 1); pos < 0 || arr[pos] != x {
					return fmt.Errorf("%v: Predecessor(%d) failed", k, x+1)
				}
			}
		}
	}
	return nil
}
