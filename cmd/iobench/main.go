// Command iobench empirically validates Table 1.1: it runs every
// permutation algorithm on the work-counting backend (swaps per key must
// grow like the time bounds) and on the PEM cache simulator (the measured
// parallel I/O count Q(N,P) divided by the Table 1.1 bound must stay flat
// as N grows).
package main

import (
	"flag"
	"os"

	"implicitlayout/bench"
	"implicitlayout/internal/pem"
)

func main() {
	minLog := flag.Int("minlog", 12, "smallest input size exponent")
	maxLog := flag.Int("maxlog", 18, "largest input size exponent")
	b := flag.Int("b", 8, "B-tree node capacity")
	p := flag.Int("p", 4, "simulated PEM processor count")
	m := flag.Int("m", 1<<12, "simulated cache size per processor, in words")
	blk := flag.Int("blk", 8, "simulated block size, in words")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	ablation := flag.Bool("ablation", false, "also run the gather-variant ablation (plain/batched/transposed)")
	flag.Parse()

	cfg := bench.Table11Config{
		MinLog: *minLog, MaxLog: *maxLog, B: *b, P: *p,
		PEM: pem.Config{M: *m, B: *blk},
	}
	emit := func(t bench.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
	}
	emit(bench.WorkScaling(cfg))
	emit(bench.IOScaling(cfg))
	if *ablation {
		emit(bench.GatherAblation(bench.AblationConfig{
			MinLog: *minLog, MaxLog: *maxLog, Trials: 2, Batch: *blk,
			PEM: pem.Config{M: *m, B: *blk},
		}))
	}
}
