// Command permbench regenerates the permutation-time experiments of the
// paper: Figure 6.1 (sequential permute time vs N), Figure 6.2 (parallel),
// Figure 6.3 (speedup vs P of the fastest algorithm per layout) and
// Figure 6.4 (equidistant-gather-on-chunks throughput vs half-array swap).
//
// Usage:
//
//	permbench [-minlog 20] [-maxlog 24] [-p 1] [-b 8] [-trials 3]
//	          [-softrev] [-sweepP] [-gather] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"implicitlayout/bench"
)

func main() {
	minLog := flag.Int("minlog", 20, "smallest input size exponent (N = 2^minlog)")
	maxLog := flag.Int("maxlog", 24, "largest input size exponent")
	p := flag.Int("p", 1, "worker count (0 = GOMAXPROCS)")
	b := flag.Int("b", 8, "B-tree node capacity")
	trials := flag.Int("trials", 3, "timed repetitions per cell")
	softrev := flag.Bool("softrev", false, "use software bit reversal (the paper's CPU T_REV2 model)")
	sweepP := flag.Bool("sweepP", false, "also run the Figure 6.3 speedup sweep")
	gatherThroughput := flag.Bool("gather", false, "also run the Figure 6.4 gather-vs-swap throughput sweep")
	maxP := flag.Int("maxp", 2*runtime.NumCPU(), "largest worker count for -sweepP / -gather")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	if *p == 0 {
		*p = runtime.GOMAXPROCS(0)
	}
	emit := func(t bench.Table) {
		if *csv {
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Fprint(os.Stdout)
		}
	}

	emit(bench.PermuteTimes(bench.PermuteConfig{
		MinLog: *minLog, MaxLog: *maxLog, P: *p, B: *b,
		Trials: *trials, SoftwareRev: *softrev,
	}))
	if *sweepP {
		emit(bench.Speedup(bench.SpeedupConfig{
			LogN: *maxLog, MaxP: *maxP, B: *b, Trials: *trials,
		}))
	}
	if *gatherThroughput {
		emit(bench.GatherThroughput(bench.ThroughputConfig{
			LogN: *maxLog, MaxP: *maxP, B: *b, Trials: *trials,
		}))
	}
}
