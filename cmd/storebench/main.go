// Command storebench measures the sharded key–value store serving layer:
// parallel build-pipeline time and GetBatch query throughput (aggregate
// and busiest-shard, with returned values verified) across the grid of
// layouts, shard counts, and query worker counts. With -json the table
// is also written as machine-readable JSON (BENCH_store.json-style) so
// CI can archive and trend the perf trajectory.
//
// Examples:
//
//	storebench -logn 22 -q 1000000 -shards 1,4,16 -workers 1,8 -layouts veb,btree
//	storebench -logn 20 -trials 1 -json BENCH_store.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"implicitlayout/bench"
	"implicitlayout/layout"
)

func main() {
	logN := flag.Int("logn", 22, "key count exponent (2^logn keys)")
	q := flag.Int("q", 1_000_000, "queries per measurement")
	b := flag.Int("b", 8, "B-tree node capacity")
	hitFrac := flag.Float64("hitfrac", 0.5, "expected fraction of present-key queries")
	shards := flag.String("shards", "1,4,16", "comma-separated shard counts")
	workers := flag.String("workers", "1,4,8", "comma-separated query worker counts")
	layouts := flag.String("layouts", "veb,btree,bst,sorted", "comma-separated layouts")
	trials := flag.Int("trials", 3, "timed repetitions per cell")
	seed := flag.Int64("seed", 1, "key shuffle and query generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonPath := flag.String("json", "",
		"write the table as machine-readable JSON to this file (\"-\" for stdout)")
	flag.Parse()

	t := bench.StoreThroughput(bench.StoreConfig{
		LogN: *logN, Q: *q, B: *b, HitFrac: *hitFrac,
		Layouts: parseLayouts(*layouts),
		Shards:  parseInts(*shards),
		Workers: parseInts(*workers),
		Trials:  *trials, Seed: *seed,
	})
	if *jsonPath == "-" {
		// JSON owns stdout; no text table alongside it.
		if err := t.JSON(os.Stdout); err != nil {
			fatalf("writing JSON: %v", err)
		}
		return
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatalf("creating %s: %v", *jsonPath, err)
		}
		if err := t.JSON(f); err != nil {
			fatalf("writing %s: %v", *jsonPath, err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", *jsonPath, err)
		}
	}
	if *csv {
		t.CSV(os.Stdout)
	} else {
		t.Fprint(os.Stdout)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fatalf("bad count %q", f)
		}
		out = append(out, v)
	}
	return out
}

func parseLayouts(s string) []layout.Kind {
	var out []layout.Kind
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "bst":
			out = append(out, layout.BST)
		case "btree":
			out = append(out, layout.BTree)
		case "veb":
			out = append(out, layout.VEB)
		case "sorted":
			out = append(out, layout.Sorted)
		default:
			fatalf("unknown layout %q (want bst, btree, veb, or sorted)", f)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "storebench: "+format+"\n", args...)
	os.Exit(2)
}
