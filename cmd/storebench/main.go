// Command storebench measures the store serving layers.
//
// The default (read-only) mode benchmarks the static sharded store:
// parallel build-pipeline time and GetBatch query throughput (aggregate
// and busiest-shard, with returned values verified) across the grid of
// layouts, shard counts, and query worker counts.
//
// With -writes F (0 < F <= 1) it switches to the mixed-workload mode and
// benchmarks the writable DB instead: concurrent clients issue an
// interleaved stream of F·ops Puts and (1-F)·ops verified Gets against a
// preloaded DB while the background compactor flushes and merges, and
// the table reports per-cell throughput plus the run/level shape the
// write stream left behind.
//
// Adding -dir D makes the mixed-workload DB durable: writes go through
// the write-ahead log under D, flushes and compactions produce segment
// files there, and after the timed workload the DB is closed, reopened
// cold, and verified — the reopen (manifest load + straight segment
// reads, no re-sort or re-permute) is measured and reported in the
// reopen_ms column. -syncwrites additionally fsyncs the log per write.
//
// Adding -mmap turns the reopen into a cold-serve comparison: the
// directory is reopened once with every segment decoded onto the heap
// and once with every segment mapped zero-copy (DBConfig.Mmap), and the
// table reports both as decode_ms and mmap_ms — the cold-start gap the
// raw segment codec buys.
//
// With -compact it benchmarks the streaming compaction path: the DB is
// preloaded into -runs fully-overlapping level-0 runs under -dir, the
// per-run filter gate is exercised with absent-key Gets (the
// probe/skip counters become columns), and then the one R-way streaming
// merge is timed with HeapAlloc sampled throughout — the peak_heap_mb
// column is the O(one output shard) claim, measured. -heapmb applies a
// soft runtime memory limit (GOMEMLIMIT-style) before the run, so CI
// can assert the merge completes inside a budget far below the dataset
// size. Combine with -mmap to serve the merge inputs zero-copy.
//
// With -batch it benchmarks the batched search path instead: the
// interleaved ring kernels behind FindBatch/GetBatch against the
// per-query serial descents they replaced, per layout x worker count.
// Adding -mmap to -batch repeats the comparison against a segment file
// remapped cold before every trial (use -dir for the scratch segments;
// a temp directory otherwise).
//
// With -net it benchmarks the TCP serving layer on loopback: a server
// over an in-memory DB, driven by -conns client connections three ways —
// serial (one request per round trip), pipelined point Gets (-window in
// flight per connection), and pipelined GetBatch (-batchsize keys per
// request) — reporting throughput, p50/p99/p999 latency, and each
// mode's speedup over serial. -writes F mixes Puts into the serial and
// pipelined streams; -rate R switches to open-loop arrival at R req/s
// per connection, charging queueing delay to the measured latency.
//
// In all modes -json writes the table as machine-readable JSON
// (BENCH_store.json-style) so CI can archive and trend the perf
// trajectory.
//
// Examples:
//
//	storebench -logn 22 -q 1000000 -shards 1,4,16 -workers 1,8 -layouts veb,btree
//	storebench -logn 20 -trials 1 -json BENCH_store.json
//	storebench -writes 0.2 -logn 20 -ops 1000000 -workers 1,4,8 -json BENCH_db.json
//	storebench -writes 0.2 -logn 16 -ops 200000 -dir /tmp/sb -json BENCH_durable.json
//	storebench -writes 0.2 -logn 22 -ops 200000 -dir /tmp/sb -mmap -json BENCH_mmap.json
//	storebench -batch -logn 22 -q 1000000 -workers 1 -mmap -json BENCH_batch.json
//	storebench -compact -logn 20 -runs 8 -dir /tmp/sb -mmap -heapmb 256 -json BENCH_compact.json
//	storebench -net -logn 20 -ops 1048576 -conns 1,4 -json BENCH_net.json
//	storebench -net -logn 18 -ops 200000 -conns 8 -writes 0.2 -rate 5000 -json BENCH_net.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"

	"implicitlayout/bench"
	"implicitlayout/layout"
)

func main() {
	logN := flag.Int("logn", 22, "key count exponent (2^logn keys)")
	q := flag.Int("q", 1_000_000, "queries per measurement (read-only mode)")
	b := flag.Int("b", 8, "B-tree node capacity")
	hitFrac := flag.Float64("hitfrac", 0.5, "expected fraction of present-key queries (read-only mode)")
	shards := flag.String("shards", "1,4,16", "comma-separated shard counts (read-only mode)")
	workers := flag.String("workers", "1,4,8", "comma-separated worker counts (query workers, or -writes clients)")
	layouts := flag.String("layouts", "veb,btree,bst,sorted", "comma-separated layouts")
	trials := flag.Int("trials", 3, "timed repetitions per cell")
	seed := flag.Int64("seed", 1, "key shuffle and query generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonPath := flag.String("json", "",
		"write the table as machine-readable JSON to this file (\"-\" for stdout)")
	writes := flag.Float64("writes", 0,
		"mixed-workload mode: fraction of operations that are Puts (0 = read-only static store)")
	ops := flag.Int("ops", 1_000_000, "operations per measurement (mixed-workload mode)")
	memLimit := flag.Int("memlimit", 0, "DB memtable flush threshold (mixed-workload mode; 0 = default)")
	fanout := flag.Int("fanout", 0, "DB runs per level before merging (mixed-workload mode; 0 = default)")
	dir := flag.String("dir", "",
		"durable mode: back the DB with this directory (WAL + segment files), "+
			"then close, reopen, and verify it, reporting recovery time (requires -writes)")
	syncWrites := flag.Bool("syncwrites", false, "durable mode: fsync the WAL on every write")
	mmap := flag.Bool("mmap", false,
		"durable mode: after the workload, reopen the directory both ways — "+
			"full heap decode vs cold-serve mmap — and report decode_ms vs mmap_ms "+
			"(requires -dir); with -batch, adds mmap-cold rows instead")
	batch := flag.Bool("batch", false,
		"batched-search mode: interleaved ring kernels vs per-query serial descents "+
			"(uses -logn, -q, -b, -hitfrac, -workers, -layouts; -mmap adds cold-serve rows)")
	compact := flag.Bool("compact", false,
		"streaming-compaction mode: preload -runs overlapping level-0 runs, "+
			"exercise the per-run filters with absent-key Gets, then time the "+
			"R-way streaming merge with the heap sampled (uses -logn, -runs, "+
			"-b, -layouts, -dir, -mmap, -trials; -heapmb caps the runtime)")
	runs := flag.Int("runs", 8, "input run count for -compact")
	heapMB := flag.Int("heapmb", 0,
		"soft runtime memory limit in MiB (debug.SetMemoryLimit), 0 = none; "+
			"lets CI assert -compact merges inside a budget below the dataset size")
	netMode := flag.Bool("net", false,
		"network loadgen mode: serve the DB over loopback TCP and drive it with "+
			"-conns client connections three ways — serial (one request per round "+
			"trip), pipelined point Gets, and pipelined GetBatch — reporting "+
			"throughput, p50/p99/p999 latency, and each mode's speedup over serial "+
			"(uses -logn, -ops, -writes as the write fraction, -trials, -seed)")
	connsFlag := flag.String("conns", "1,4", "comma-separated client connection counts (-net)")
	window := flag.Int("window", 256, "per-connection pipeline depth (-net)")
	batchSize := flag.Int("batchsize", 512, "keys per GetBatch request (-net batched mode)")
	rate := flag.Int("rate", 0,
		"open-loop arrival rate per connection in req/s (-net; 0 = closed loop); "+
			"latency is then measured from the scheduled arrival, charging queueing "+
			"delay to the server")
	cold := flag.Bool("cold", false,
		"cold point-lookup mode: per-lookup cost with the segment remapped and "+
			"page-cache-evicted before every single Get, vs the same lookups on a "+
			"resident heap decode (uses -logn, -q as the lookup count, -b, -hitfrac, "+
			"-layouts, -dir, -seed)")
	flag.Parse()

	if *writes < 0 || *writes > 1 {
		fatalf("-writes %v outside [0, 1]", *writes)
	}
	if (*batch || *cold || *compact) && *writes > 0 {
		fatalf("-batch, -cold, and -compact are their own modes; drop -writes")
	}
	exclusive := 0
	for _, on := range []bool{*batch, *cold, *compact, *netMode} {
		if on {
			exclusive++
		}
	}
	if exclusive > 1 {
		fatalf("-batch, -cold, -compact, and -net are mutually exclusive")
	}
	if *compact && *dir == "" {
		fatalf("-compact requires -dir: the streaming merge is the durable path")
	}
	if *heapMB > 0 {
		debug.SetMemoryLimit(int64(*heapMB) << 20)
	}
	if !*batch && !*cold && !*compact && !*netMode {
		if *dir != "" && *writes == 0 {
			fatalf("-dir requires the mixed-workload mode (-writes > 0): the durable DB is the write path")
		}
		if *mmap && *dir == "" {
			fatalf("-mmap requires -dir: cold-serve mode maps segment files")
		}
	}
	var t *bench.Table
	if *netMode {
		var err error
		t, err = bench.NetThroughput(bench.NetConfig{
			LogN: *logN, Ops: *ops,
			Conns: parseInts(*connsFlag), Batch: *batchSize, Window: *window,
			WriteFrac: *writes, Rate: *rate,
			Trials: *trials, Seed: *seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
	} else if *compact {
		var err error
		t, err = bench.CompactThroughput(bench.CompactConfig{
			LogN: *logN, Runs: *runs, MissOps: *q, B: *b,
			Dir: *dir, Mmap: *mmap,
			Layouts: parseLayouts(*layouts),
			Trials:  *trials, Seed: *seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
	} else if *cold {
		var err error
		t, err = bench.ColdLookup(bench.ColdConfig{
			LogN: *logN, Lookups: *q, B: *b, HitFrac: *hitFrac,
			Layouts: parseLayouts(*layouts),
			Seed:    *seed, Dir: *dir,
		})
		if err != nil {
			fatalf("%v", err)
		}
	} else if *batch {
		var err error
		t, err = bench.BatchThroughput(bench.BatchConfig{
			LogN: *logN, Q: *q, B: *b, HitFrac: *hitFrac,
			Layouts: parseLayouts(*layouts),
			Workers: parseInts(*workers),
			Trials:  *trials, Seed: *seed,
			Mmap: *mmap, Dir: *dir,
		})
		if err != nil {
			fatalf("%v", err)
		}
	} else if *writes > 0 {
		t = bench.DBThroughput(bench.DBConfig{
			LogN: *logN, Ops: *ops, WriteFrac: *writes,
			MemLimit: *memLimit, Fanout: *fanout, B: *b,
			Dir: *dir, SyncWrites: *syncWrites, Mmap: *mmap,
			Layouts: parseLayouts(*layouts),
			Workers: parseInts(*workers),
			Trials:  *trials, Seed: *seed,
		})
	} else {
		t = bench.StoreThroughput(bench.StoreConfig{
			LogN: *logN, Q: *q, B: *b, HitFrac: *hitFrac,
			Layouts: parseLayouts(*layouts),
			Shards:  parseInts(*shards),
			Workers: parseInts(*workers),
			Trials:  *trials, Seed: *seed,
		})
	}
	if *jsonPath == "-" {
		// JSON owns stdout; no text table alongside it.
		if err := t.JSON(os.Stdout); err != nil {
			fatalf("writing JSON: %v", err)
		}
		return
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatalf("creating %s: %v", *jsonPath, err)
		}
		if err := t.JSON(f); err != nil {
			fatalf("writing %s: %v", *jsonPath, err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", *jsonPath, err)
		}
	}
	if *csv {
		t.CSV(os.Stdout)
	} else {
		t.Fprint(os.Stdout)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fatalf("bad count %q", f)
		}
		out = append(out, v)
	}
	return out
}

func parseLayouts(s string) []layout.Kind {
	var out []layout.Kind
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "bst":
			out = append(out, layout.BST)
		case "btree":
			out = append(out, layout.BTree)
		case "veb":
			out = append(out, layout.VEB)
		case "hier":
			out = append(out, layout.Hier)
		case "sorted":
			out = append(out, layout.Sorted)
		default:
			fatalf("unknown layout %q (want bst, btree, veb, hier, or sorted)", f)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "storebench: "+format+"\n", args...)
	os.Exit(2)
}
