// Command layoutviz renders the small illustrative figures of the paper:
// the BST layout for N=15 (Figure 1.1), the B-tree layout for N=26, B=2
// (Figure 1.2), the vEB layout for N=15 (Figure 1.3), and — with -gather —
// the round-by-round state of the sequential equidistant gather
// (Figure 3.1).
package main

import (
	"flag"
	"fmt"
	"strings"

	"implicitlayout/internal/par"
	"implicitlayout/internal/shuffle"
	"implicitlayout/internal/vec"
	"implicitlayout/layout"
)

func main() {
	n := flag.Int("n", 15, "tree size for the BST/vEB figures")
	nb := flag.Int("nb", 26, "tree size for the B-tree figure")
	nh := flag.Int("nh", 200, "tree size for the hier figure (pages hold 64·b keys)")
	b := flag.Int("b", 2, "B-tree node capacity (and hier inner block capacity)")
	gatherDemo := flag.Bool("gather", false, "show the equidistant gather rounds (fig 3.1)")
	r := flag.Int("r", 3, "gather shape r = l for -gather")
	flag.Parse()

	show(layout.BST, *n, 0)
	show(layout.BTree, *nb, *b)
	show(layout.VEB, *n, 0)
	show(layout.Hier, *nh, *b)
	if *gatherDemo {
		showGather(*r)
	}
}

func show(k layout.Kind, n, b int) {
	sorted := make([]int, n)
	for i := range sorted {
		sorted[i] = i + 1
	}
	arr := layout.Build(k, sorted, b)
	fmt.Printf("%s layout, N=%d", k, n)
	if k == layout.BTree {
		fmt.Printf(", B=%d", b)
	}
	fmt.Printf(":\n  array: %v\n", arr)
	// Render by tree level.
	switch k {
	case layout.BST, layout.VEB:
		nav := layout.NewVEBNav(n)
		for depth := 0; ; depth++ {
			first := 1<<uint(depth) - 1
			if first >= n {
				break
			}
			var cells []string
			for rank := 0; rank < 1<<uint(depth) && first+rank < n; rank++ {
				pos := first + rank
				if k == layout.VEB {
					pos = nav.Pos(depth, rank)
				}
				cells = append(cells, fmt.Sprint(arr[pos]))
			}
			fmt.Printf("  level %d: %s\n", depth, strings.Join(cells, " "))
		}
	case layout.BTree:
		for node, level, width := 0, 0, 1; node*b < n; level++ {
			var cells []string
			for i := 0; i < width && node*b < n; i, node = i+1, node+1 {
				end := min((node+1)*b, n)
				cells = append(cells, fmt.Sprintf("[%s]", join(arr[node*b:end])))
			}
			fmt.Printf("  level %d: %s\n", level, strings.Join(cells, " "))
			width *= b + 1
		}
	case layout.Hier:
		// One line per page-sized super-block (in outer level order):
		// the sorted key range it owns and its inner root node — the
		// two-level structure without printing every inner node.
		p := layout.HierPageKeys(b)
		for m := 0; m*p < n; m++ {
			page := arr[m*p : min(m*p+p, n)]
			lo, hi := page[0], page[0]
			for _, x := range page {
				lo, hi = min(lo, x), max(hi, x)
			}
			fmt.Printf("  page %d (pos %d..%d): keys %d..%d, inner root [%s]\n",
				m, m*p, m*p+len(page)-1, lo, hi, join(page[:min(b, len(page))]))
		}
	}
	fmt.Println()
}

func join(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, " ")
}

// showGather replays the equidistant gather for r = l cycle by cycle,
// printing the array after each cycle rotation and after the fix-up
// shifts — the progression Figure 3.1 illustrates.
func showGather(r int) {
	l := r
	n := r + (r+1)*l
	a := make([]string, n)
	for j := 1; j <= r+1; j++ {
		for i := 1; i <= l; i++ {
			a[(j-1)*(l+1)+i-1] = fmt.Sprintf("T%d.%d", j, i)
		}
		if j <= r {
			a[j*(l+1)-1] = fmt.Sprintf("T0.%d", j)
		}
	}
	fmt.Printf("equidistant gather, r = l = %d (fig 3.1):\n  start: %v\n", r, a)
	rn := par.New(1)
	v := vec.Of(a)
	for i := 1; i <= r; i++ {
		shuffle.RotateRightUnits[string](rn, v, i-1, l, i+1, 1, 1)
		fmt.Printf("  cycle %d: %v\n", i, a)
	}
	for j := 1; j <= r; j++ {
		shuffle.RotateRightUnits[string](rn, v, r+(j-1)*l, 1, l, 1, (r+1-j)%l)
	}
	fmt.Printf("  fixed:   %v\n", a)
}
