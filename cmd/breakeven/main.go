// Command breakeven regenerates Figures 6.6 and 6.7 and the paper's
// headline result: the combined time to permute a sorted array into each
// layout and answer Q queries, versus Q, and the break-even query count
// beyond which permuting beats plain binary search (the paper reports
// 0.75%–12% of N sequentially and 0.93%–6% of N in parallel on the CPU).
package main

import (
	"flag"
	"os"
	"runtime"

	"implicitlayout/bench"
)

func main() {
	logN := flag.Int("logn", 24, "input size exponent (paper uses 29)")
	p := flag.Int("p", 1, "worker count (0 = GOMAXPROCS); 1 reproduces fig 6.6, max fig 6.7")
	b := flag.Int("b", 8, "B-tree node capacity")
	trials := flag.Int("trials", 3, "timed repetitions per measurement")
	qbase := flag.Int("qbase", 1_000_000, "batch size used to measure per-query cost")
	minLogQ := flag.Int("minlogq", 16, "smallest query count exponent in the table")
	maxLogQ := flag.Int("maxlogq", 26, "largest query count exponent in the table")
	seed := flag.Int64("seed", 1, "query generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	if *p == 0 {
		*p = runtime.GOMAXPROCS(0)
	}
	res := bench.BreakEven(bench.BreakEvenConfig{
		LogN: *logN, P: *p, B: *b, Trials: *trials, QBase: *qbase,
		MinLogQ: *minLogQ, MaxLogQ: *maxLogQ, Seed: *seed,
	})
	if *csv {
		res.Combined.CSV(os.Stdout)
		res.Crossovers.CSV(os.Stdout)
		return
	}
	res.Combined.Fprint(os.Stdout)
	res.Crossovers.Fprint(os.Stdout)
}
