// Command querybench regenerates Figure 6.5: the time to answer 10^6
// uniformly random queries on each search-tree layout versus the array
// size, with binary search as baseline and the BST layout measured with
// and without explicit prefetching.
package main

import (
	"flag"
	"os"

	"implicitlayout/bench"
)

func main() {
	minLog := flag.Int("minlog", 16, "smallest input size exponent")
	maxLog := flag.Int("maxlog", 24, "largest input size exponent")
	q := flag.Int("q", 1_000_000, "queries per measurement")
	b := flag.Int("b", 8, "B-tree node capacity")
	trials := flag.Int("trials", 3, "timed repetitions per cell")
	seed := flag.Int64("seed", 1, "query generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	t := bench.QueryTimes(bench.QueryConfig{
		MinLog: *minLog, MaxLog: *maxLog, Q: *q, B: *b, Trials: *trials, Seed: *seed,
	})
	if *csv {
		t.CSV(os.Stdout)
	} else {
		t.Fprint(os.Stdout)
	}
}
