// Command gpubench regenerates the GPU experiments on the simulated
// device (see internal/gpu and DESIGN.md for the hardware substitution):
// Figure 6.8 (modelled permute time per algorithm vs N) and Figure 6.9
// (modelled combined permute+query time vs Q, with break-even points).
package main

import (
	"flag"
	"os"

	"implicitlayout/bench"
)

func main() {
	minLog := flag.Int("minlog", 18, "smallest input size exponent")
	maxLog := flag.Int("maxlog", 23, "largest input size exponent")
	logN := flag.Int("logn", 23, "input size exponent for the break-even run")
	b := flag.Int("b", 32, "B-tree node capacity (paper uses 32 on the GPU: 128-byte lines)")
	qbase := flag.Int("qbase", 1<<18, "batch size used to measure per-query cost")
	minLogQ := flag.Int("minlogq", 16, "smallest query count exponent")
	maxLogQ := flag.Int("maxlogq", 26, "largest query count exponent")
	breakeven := flag.Bool("breakeven", true, "run the Figure 6.9 break-even experiment")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	cfg := bench.GPUConfig{
		MinLog: *minLog, MaxLog: *maxLog, LogN: *logN, B: *b,
		QBase: *qbase, MinLogQ: *minLogQ, MaxLogQ: *maxLogQ, Seed: 1,
	}
	emit := func(t bench.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
	}
	emit(bench.GPUPermuteTimes(cfg))
	if *breakeven {
		res := bench.GPUBreakEven(cfg)
		emit(res.Combined)
		emit(res.Crossovers)
	}
}
