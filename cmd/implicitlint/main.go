// Implicitlint is the project's static-analysis suite: five analyzers
// that machine-check the engine invariants PRs 4–5 established, so
// regressions fail CI at the offending line instead of waiting for a
// reviewer to remember them.
//
// Run it through go vet, which plans the build and feeds each package's
// files and export data to the tool:
//
//	go build -o /tmp/implicitlint ./cmd/implicitlint
//	go vet -vettool=/tmp/implicitlint ./...
//
// or standalone from the module root:
//
//	go run ./cmd/implicitlint ./...
//
// The analyzers (see each package's doc for the invariant's history):
//
//	unsafeview  unsafe confined to checked View/Bytes casts in internal/mmapio
//	snapload    one-Load snapshot reads; publishes only via the swap helpers
//	syncorder   no fsync while a reader-contended mutex is held
//	keepalive   runtime.KeepAlive pins on prefetch warm-up sinks
//	stickyerr   durable API error results must be consumed
//
// Findings are suppressed per line with "//lint:allow <analyzer>
// <justification>"; an unjustified suppression is itself a finding.
// Select analyzers with -<name>; configure one with -<name>.<flag>.
package main

import (
	"implicitlayout/internal/analysis/keepalive"
	"implicitlayout/internal/analysis/lintkit"
	"implicitlayout/internal/analysis/snapload"
	"implicitlayout/internal/analysis/stickyerr"
	"implicitlayout/internal/analysis/syncorder"
	"implicitlayout/internal/analysis/unsafeview"
)

func main() {
	lintkit.Main(
		keepalive.Analyzer,
		snapload.Analyzer,
		stickyerr.Analyzer,
		syncorder.Analyzer,
		unsafeview.Analyzer,
	)
}
